// Command reisctl demonstrates the REIS host API (Table 1) against a
// simulated device: it generates a synthetic corpus, deploys it with
// IVF_Deploy, issues an IVF_Search command through an asynchronous
// NVMe-style queue pair (submission + polled completion), and prints
// the retrieved document chunks with per-query device statistics.
// With -shards N the same flow runs against a sharded topology of N
// devices (results are bit-identical; see DESIGN.md).
//
// With -churn the tool then exercises online mutability end to end:
// it appends the query vectors themselves as new documents (each query
// must now retrieve its own appended chunk first), tombstones them
// again (they must vanish), and runs the garbage collector, printing
// the wear/erase accounting and verifying results survive compaction
// bit for bit.
//
// With -replicas N the corpus is instead deployed onto a replica group
// (broadcast under the mutation barrier), each query is routed to one
// member by power-of-two-choices over queue occupancy, and every
// replica is then probed directly to show the group's determinism
// contract: identical answers no matter which member serves them.
//
//	reisctl -n 4000 -queries 5 -k 3 -nprobe 8 -qdepth 16 -shards 2
//	reisctl -n 3000 -queries 4 -churn
//	reisctl -n 3000 -queries 6 -replicas 3 -churn
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"reflect"
	"runtime"
	"sync"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/serve"
	"reis/internal/ssd"
)

// retrievalHost is the API surface reisctl drives, served identically
// by a single device (reis.Engine) and the sharded router
// (reis.ShardedEngine).
type retrievalHost interface {
	Submit(reis.HostCommand) (reis.HostResponse, error)
	NewQueue(reis.QueueConfig) (*reis.Queue, error)
}

// submitHost is the narrower surface the churn demo needs; the replica
// group serves it too (mutations broadcast to every member).
type submitHost interface {
	Submit(reis.HostCommand) (reis.HostResponse, error)
}

func main() {
	n := flag.Int("n", 4000, "database entries")
	dim := flag.Int("dim", 256, "embedding dimensionality")
	queries := flag.Int("queries", 5, "queries to issue")
	k := flag.Int("k", 3, "documents per query")
	nprobe := flag.Int("nprobe", 8, "IVF clusters probed")
	device := flag.String("device", "ssd1", "device preset (ssd1|ssd2)")
	qdepth := flag.Int("qdepth", 16, "submission queue depth")
	shards := flag.Int("shards", 1, "simulated devices (scatter-gather when > 1)")
	replicas := flag.Int("replicas", 1, "replica hosts; searches route by queue occupancy when > 1")
	churn := flag.Bool("churn", false, "demo online mutability: append, delete, compact")
	flag.Parse()

	cfg := ssd.SSD1()
	if *device == "ssd2" {
		cfg = ssd.SSD2()
	}
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	if *churn {
		// Reserve append/GC headroom so deployed regions can grow.
		cfg.OverprovisionPct = 100
	}

	log.Printf("generating %d x %d-dim corpus...", *n, *dim)
	data := dataset.Generate(dataset.Config{
		Name: "reisctl", N: *n, Dim: *dim, Clusters: 32,
		Queries: *queries, DocBytes: 512, Seed: 1,
	})
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 32, Seed: 1})

	hint := int64(*n)*int64(*dim)*16 + 64<<20
	if *replicas > 1 {
		runReplicated(cfg, data, cents, assign, hint, *replicas, *shards, *qdepth, *k, *nprobe, *churn)
		return
	}
	var host retrievalHost
	var sharded *reis.ShardedEngine
	var engine *reis.Engine
	if *shards > 1 {
		sh, err := reis.NewSharded(cfg, *shards, hint, reis.AllOptions())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("deploying database across %d x %s (%d planes total)...",
			*shards, cfg.Name, *shards*cfg.Geo.Planes())
		host, sharded = sh, sh
	} else {
		e, err := reis.New(cfg, hint, reis.AllOptions())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("deploying database on %s (%d planes, %d channels)...",
			cfg.Name, cfg.Geo.Planes(), cfg.Geo.Channels)
		host, engine = e, e
	}
	if _, err := host.Submit(reis.HostCommand{
		Opcode: reis.OpcodeIVFDeploy,
		Deploy: &reis.DeployConfig{
			ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 512,
			Centroids: cents, Assign: assign,
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Search through an asynchronous queue pair: submit the batched
	// IVF_Search command, then poll the completion side — the NVMe
	// submission/completion flow a real host driver performs.
	queue, err := host.NewQueue(reis.QueueConfig{Depth: *qdepth})
	if err != nil {
		log.Fatal(err)
	}
	defer queue.Close()
	id, err := queue.SubmitAsync(context.Background(), reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1,
		Queries: data.Queries, K: *k, NProbe: *nprobe,
	})
	if err != nil {
		log.Fatal(err)
	}
	var resp reis.HostResponse
	for {
		cs := queue.Reap(1)
		if len(cs) == 0 {
			runtime.Gosched() // completion pending; poll again
			continue
		}
		if cs[0].ID != id {
			log.Fatalf("reaped completion %d, submitted %d", cs[0].ID, id)
		}
		if cs[0].Err != nil {
			log.Fatal(cs[0].Err)
		}
		resp = cs[0].Resp
		break
	}
	printHits(resp.Results)
	st := resp.Stats
	fmt.Printf("\nbatch device stats: %d pages sensed (%d coarse, %d fine), %d entries scanned, %d TTL survivors, %d doc pages\n",
		st.CoarsePages+st.FinePages, st.CoarsePages, st.FinePages,
		st.EntriesScanned, st.Survivors, st.DocPages)
	// The command above served the batch through the concurrent plane
	// pipeline and returned per-query device events; cost them with
	// the single-query and batch-overlap timing models.
	var bd reis.Breakdown
	var bb reis.BatchBreakdown
	if sharded != nil {
		if bd, err = sharded.Latency(1, resp.QueryStats[0], resp.ShardStats(0), reis.UnitScale()); err != nil {
			log.Fatal(err)
		}
		if bb, err = sharded.BatchLatency(1, resp.QueryStats, resp.PerShard, reis.UnitScale()); err != nil {
			log.Fatal(err)
		}
	} else {
		db, err := engine.DB(1)
		if err != nil {
			log.Fatal(err)
		}
		bd = engine.Latency(db, resp.QueryStats[0], reis.UnitScale())
		bb = engine.BatchLatency(db, resp.QueryStats, reis.UnitScale())
	}
	fmt.Printf("modeled per-query latency on %dx %s: %v (IBC %v, coarse %v, fine %v, rerank %v, docs %v), %.1f uJ\n",
		*shards, cfg.Name, bd.Total, bd.IBC, bd.Coarse, bd.Fine, bd.Rerank, bd.Docs, bd.EnergyJ*1e6)
	fmt.Printf("batched admission: %d queries in %v makespan (%.0f QPS, %.2fx over one-at-a-time)\n",
		bb.Queries, bb.Makespan, bb.QPS, bb.Serial.Seconds()/bb.Makespan.Seconds())

	if *churn {
		runChurn(host, data, cents, *k, *nprobe)
	}
}

// printHits renders one batch's retrieved chunks.
func printHits(results [][]reis.DocResult) {
	for qi, rs := range results {
		fmt.Printf("query %d:\n", qi)
		for rank, r := range rs {
			header := r.Doc
			if len(header) > 48 {
				header = header[:48]
			}
			fmt.Printf("  #%d id=%-6d dist=%-8.0f %q\n", rank+1, r.ID, r.Dist, header)
		}
	}
}

// runReplicated is the -replicas demo: deploy onto a replica group
// (one broadcast under the mutation barrier), route each query to a
// member by power-of-two-choices over queue occupancy, then probe
// every replica directly to show all members answer identically.
func runReplicated(cfg ssd.Config, data *dataset.Dataset, cents [][]float32, assign []int,
	hint int64, replicas, shards, qdepth, k, nprobe int, churn bool) {
	hosts := make([]serve.Host, replicas)
	for i := range hosts {
		var err error
		if shards > 1 {
			hosts[i], err = reis.NewSharded(cfg, shards, hint, reis.AllOptions())
		} else {
			hosts[i], err = reis.New(cfg, hint, reis.AllOptions())
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	group, err := serve.NewGroup(hosts, serve.Config{QueueDepth: qdepth})
	if err != nil {
		log.Fatal(err)
	}
	defer group.Close()
	log.Printf("deploying database onto %d replica(s) x %d device(s) (%s; one broadcast)...",
		replicas, shards, cfg.Name)
	if _, err := group.Submit(reis.HostCommand{
		Opcode: reis.OpcodeIVFDeploy,
		Deploy: &reis.DeployConfig{
			ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 512,
			Centroids: cents, Assign: assign,
		},
	}); err != nil {
		log.Fatal(err)
	}

	// Route each query as its own command: concurrent submitters keep
	// queue occupancies uneven, so the router has choices to make.
	results := make([][]reis.DocResult, len(data.Queries))
	var wg sync.WaitGroup
	for qi, q := range data.Queries {
		wg.Add(1)
		go func(qi int, q []float32) {
			defer wg.Done()
			resp, err := group.Do(context.Background(), reis.HostCommand{
				Opcode: reis.OpcodeIVFSearch, DBID: 1,
				Queries: [][]float32{q}, K: k, NProbe: nprobe,
			})
			if err != nil {
				log.Fatal(err)
			}
			results[qi] = resp.Results[0]
		}(qi, q)
	}
	wg.Wait()
	printHits(results)
	st := group.Stats()
	fmt.Printf("\ngroup stats: %d routed, %d failovers, %d rejected, %d retirements, %d broadcasts\n",
		st.Routed, st.Failovers, st.Rejected, st.Retirements, st.Broadcasts)

	// The determinism contract: every member, probed directly, returns
	// the routed answers bit for bit.
	batch := reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1,
		Queries: data.Queries, K: k, NProbe: nprobe,
	}
	for i := 0; i < group.Replicas(); i++ {
		resp, err := group.Host(i).Submit(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica %d matches routed results bit for bit: %v\n",
			i, reflect.DeepEqual(resp.Results, results))
	}

	if churn {
		// Mutations broadcast to every replica under the barrier, so
		// the same churn script drives the whole group.
		runChurn(group, data, cents, k, nprobe)
	}
}

// runChurn drives the online-mutability opcodes end to end: append
// the query vectors as new documents, verify each query now retrieves
// its own appended chunk, tombstone them again, and compact —
// checking that results survive garbage collection bit for bit.
func runChurn(host submitHost, data *dataset.Dataset, cents [][]float32, k, nprobe int) {
	fmt.Println("\n-- online churn: append / delete / compact --")
	search := func() reis.HostResponse {
		resp, err := host.Submit(reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: 1,
			Queries: data.Queries, K: k, NProbe: nprobe,
		})
		if err != nil {
			log.Fatal(err)
		}
		return resp
	}
	// Append each query vector as a fresh document, assigned to its
	// nearest centroid (the centroid set is immutable).
	docs := make([][]byte, len(data.Queries))
	assign := make([]int, len(data.Queries))
	for i, q := range data.Queries {
		docs[i] = fmt.Appendf(nil, "LIVE UPDATE %d: appended after deployment", i)
		assign[i] = ann.NearestCentroid(cents, q)
	}
	resp, err := host.Submit(reis.HostCommand{
		Opcode: reis.OpcodeAppend, DBID: 1,
		Append: &reis.AppendConfig{Vectors: data.Queries, Docs: docs, Assign: assign},
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := resp.AppendedIDs
	fmt.Printf("appended %d items (ids %d..%d), %d pages programmed\n",
		len(ids), ids[0], ids[len(ids)-1], resp.Wear.PagesProgrammed)
	hits := 0
	for qi, results := range search().Results {
		if len(results) > 0 && results[0].ID == ids[qi] {
			hits++
		}
	}
	fmt.Printf("appended chunks retrieved first for %d/%d queries\n", hits, len(ids))

	// Retract the appended items plus a third of the base corpus, so
	// live ratios actually drop below the GC threshold.
	del := append([]int{}, ids...)
	for id := 0; id < data.Len(); id += 3 {
		del = append(del, id)
	}
	if _, err := host.Submit(reis.HostCommand{
		Opcode: reis.OpcodeDelete, DBID: 1, Del: &reis.DeleteConfig{IDs: del},
	}); err != nil {
		log.Fatal(err)
	}
	tomb := make(map[int]bool, len(del))
	for _, id := range del {
		tomb[id] = true
	}
	before := search()
	for _, results := range before.Results {
		for _, r := range results {
			if tomb[r.ID] {
				log.Fatalf("deleted id %d surfaced", r.ID)
			}
		}
	}
	fmt.Printf("deleted %d items (%d appended + every 3rd base doc); none surface in a re-search\n",
		len(del), len(ids))

	resp, err = host.Submit(reis.HostCommand{
		Opcode: reis.OpcodeCompact, DBID: 1, Compact: &reis.CompactConfig{MinLiveRatio: 0.9},
	})
	if err != nil {
		log.Fatal(err)
	}
	w := resp.Wear
	fmt.Printf("compacted %d GC rows: %d live entries copied forward, %d pages read, %d programmed, %d freed, %d block erases (max wear %d)\n",
		w.CompactedRows, w.CopiedEntries, w.PagesRead, w.PagesProgrammed, w.FreedPages, w.BlockErases, w.MaxBlockErase)
	after := search()
	fmt.Printf("results identical across compaction: %v\n", reflect.DeepEqual(after.Results, before.Results))
}
