// Command reisbench regenerates the paper's evaluation. Each
// experiment is addressed by the paper artifact it reproduces:
//
//	reisbench -exp fig7 -scale 16
//	reisbench -exp all
//
// Experiments: fig2 (RAG breakdown, flat), fig3 (RAG breakdown, BQ),
// table4 (end-to-end), fig5 (ANNS algorithms on CPU), fig7 (throughput
// vs CPU-Real), fig8 (energy efficiency; printed with fig7), fig9
// (optimization sensitivity), asic (Sec 6.3.1), fig10 (vs ICE), fig11
// (vs NDSearch), throughput (batched vs sequential query admission),
// qdepth (QPS vs submission-queue depth through the async host API),
// shards (throughput vs device count through the sharded router),
// prune (threshold-propagated top-k pruning vs the unpruned scan),
// skew (the DRAM caching tier — hot-cluster pinning plus the result
// cache — under Zipfian query skew and bursty append/delete churn),
// replicas (the replicated serving tier: concurrent single-query
// commands routed over a replica group, with and without one member
// slowed by QoS-weighted ballast), churn (GC wear under sustained
// append/delete/compact churn: wear-leveled vs first-fit placement of
// recycled rows, with write amplification and max-erase skew), slo
// (modeled latency quantiles p50/p95/p99/p999 under a deterministic
// Poisson arrival schedule, swept over arrival rate x queue depth x
// shard count), frontier (recall vs modeled latency: live HNSW/LSH/
// PQ-IVF indexes served from host DRAM against the flash engine with
// pruning, with and without the DRAM caching tier).
//
// Profiling and machine-readable output:
//
//	reisbench -exp throughput -cpuprofile cpu.out -memprofile mem.out
//	reisbench -exp throughput -json BENCH_2026-07-29.json
//
// The -json report carries every experiment's rows (for throughput:
// QPS, ns/op and allocs/op per batch size), starting the repository's
// BENCH_*.json performance trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"reis/internal/experiments"
)

// jsonExperiment is one experiment's machine-readable result.
type jsonExperiment struct {
	ID        string  `json:"id"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rows      any     `json:"rows"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Tool        string           `json:"tool"`
	GeneratedAt string           `json:"generated_at"`
	Scale       int              `json:"scale"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	// realMain returns instead of calling os.Exit so deferred cleanup
	// (CPU-profile stop, file closes) runs on every path — an early
	// exit would truncate the pprof output.
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "reisbench: %v\n", err)
		os.Exit(1)
	}
}

func realMain() error {
	exp := flag.String("exp", "all", "experiment id (fig2|fig3|table4|fig5|fig7|fig8|fig9|asic|fig10|fig11|throughput|qdepth|shards|prune|skew|replicas|churn|slo|frontier|all)")
	scale := flag.Int("scale", 16, "workload scale divisor (larger = smaller functional datasets)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	jsonOut := flag.String("json", "", "write machine-readable results (JSON) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"fig2", "fig5", "fig7", "fig9", "asic", "fig10", "fig11", "throughput", "qdepth", "shards", "prune", "skew", "replicas", "churn", "slo", "frontier"}
	}
	report := jsonReport{
		Tool:        "reisbench",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       *scale,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, id := range ids {
		start := time.Now()
		rows, err := run(id, *scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID: id, ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6, Rows: rows,
		})
		fmt.Printf("[%s completed in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// run executes one experiment, prints its table, and returns its rows
// for the machine-readable report.
func run(id string, scale int) (any, error) {
	switch id {
	case "fig2", "fig3", "table4":
		rows, err := experiments.RunRAGBreakdown(scale)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatRAG(rows))
		return rows, nil
	case "fig5":
		pts, err := experiments.RunFig5(scale)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig5(pts))
		return pts, nil
	case "fig7", "fig8":
		rows, err := experiments.RunFig7(scale, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig7(rows))
		avg, maxS, avgW, maxW := experiments.SummarizeFig7(rows)
		fmt.Printf("summary: speedup avg %.1fx max %.1fx (paper: 13x / 112x); QPS/W avg %.1fx max %.1fx (paper: 55x / 157x)\n",
			avg, maxS, avgW, maxW)
		return rows, nil
	case "fig9":
		rows, err := experiments.RunFig9(scale, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig9(rows))
		return rows, nil
	case "asic":
		rows, err := experiments.RunASIC(scale, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatASIC(rows))
		return rows, nil
	case "fig10":
		rows, err := experiments.RunFig10(scale, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig10(rows))
		return rows, nil
	case "fig11":
		rows, err := experiments.RunFig11(scale)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFig11(rows))
		return rows, nil
	case "throughput":
		rows, err := experiments.RunThroughput(scale, nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatThroughput(rows))
		return rows, nil
	case "qdepth":
		rows, err := experiments.RunQDepth(scale, nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatQDepth(rows))
		return rows, nil
	case "shards":
		rows, err := experiments.RunShards(scale, nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatShards(rows))
		return rows, nil
	case "prune":
		rows, err := experiments.RunPrune(nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatPrune(rows))
		return rows, nil
	case "skew":
		rows, err := experiments.RunSkew(nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatSkew(rows))
		return rows, nil
	case "churn":
		rows, err := experiments.RunChurn()
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatChurn(rows))
		return rows, nil
	case "replicas":
		rows, err := experiments.RunReplicas(scale, nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatReplicas(rows))
		return rows, nil
	case "slo":
		rows, err := experiments.RunSLO(scale, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatSLO(rows))
		return rows, nil
	case "frontier":
		rows, err := experiments.RunFrontier(scale)
		if err != nil {
			return nil, err
		}
		fmt.Print(experiments.FormatFrontier(rows))
		return rows, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}
