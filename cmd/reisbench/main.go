// Command reisbench regenerates the paper's evaluation. Each
// experiment is addressed by the paper artifact it reproduces:
//
//	reisbench -exp fig7 -scale 16
//	reisbench -exp all
//
// Experiments: fig2 (RAG breakdown, flat), fig3 (RAG breakdown, BQ),
// table4 (end-to-end), fig5 (ANNS algorithms on CPU), fig7 (throughput
// vs CPU-Real), fig8 (energy efficiency; printed with fig7), fig9
// (optimization sensitivity), asic (Sec 6.3.1), fig10 (vs ICE), fig11
// (vs NDSearch), throughput (batched vs sequential query admission).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"reis/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2|fig3|table4|fig5|fig7|fig8|fig9|asic|fig10|fig11|throughput|all)")
	scale := flag.Int("scale", 16, "workload scale divisor (larger = smaller functional datasets)")
	flag.Parse()

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"fig2", "fig5", "fig7", "fig9", "asic", "fig10", "fig11", "throughput"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "reisbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(id string, scale int) error {
	switch id {
	case "fig2", "fig3", "table4":
		rows, err := experiments.RunRAGBreakdown(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRAG(rows))
	case "fig5":
		pts, err := experiments.RunFig5(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig5(pts))
	case "fig7", "fig8":
		rows, err := experiments.RunFig7(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig7(rows))
		avg, maxS, avgW, maxW := experiments.SummarizeFig7(rows)
		fmt.Printf("summary: speedup avg %.1fx max %.1fx (paper: 13x / 112x); QPS/W avg %.1fx max %.1fx (paper: 55x / 157x)\n",
			avg, maxS, avgW, maxW)
	case "fig9":
		rows, err := experiments.RunFig9(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig9(rows))
	case "asic":
		rows, err := experiments.RunASIC(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatASIC(rows))
	case "fig10":
		rows, err := experiments.RunFig10(scale, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig10(rows))
	case "fig11":
		rows, err := experiments.RunFig11(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig11(rows))
	case "throughput":
		rows, err := experiments.RunThroughput(scale, nil, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThroughput(rows))
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
