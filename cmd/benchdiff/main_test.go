package main

import (
	"strings"
	"testing"
)

func mkReport(modelQPS, wallQPS, allocs float64) *report {
	var r report
	r.Experiments = []struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	}{
		{ID: "throughput", Rows: []map[string]any{{
			"Dataset": "NQ", "Mode": "IVF@np2", "Batch": float64(8),
			"ModelQPS": modelQPS, "WallQPS": wallQPS, "AllocsPerOp": allocs,
		}}},
	}
	return &r
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := mkReport(1000, 2000, 24.5)
	cur := mkReport(900, 1200, 24.5) // -10% model, wall noisy but ungated
	v, _ := diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestDiffCatchesModelRegression(t *testing.T) {
	v, _ := diff(mkReport(1000, 2000, 24.5), mkReport(700, 2000, 24.5), options{maxRegressPct: 25})
	if len(v) != 1 || !strings.Contains(v[0], "ModelQPS") {
		t.Fatalf("violations: %v", v)
	}
}

func TestDiffCatchesAllocIncrease(t *testing.T) {
	v, _ := diff(mkReport(1000, 2000, 24.5), mkReport(1000, 2000, 25.5), options{maxRegressPct: 25})
	if len(v) != 1 || !strings.Contains(v[0], "AllocsPerOp") {
		t.Fatalf("violations: %v", v)
	}
	// Slack absorbs small drift.
	v, _ = diff(mkReport(1000, 2000, 24.5), mkReport(1000, 2000, 25.5), options{maxRegressPct: 25, allocsSlack: 2})
	if len(v) != 0 {
		t.Fatalf("violations with slack: %v", v)
	}
}

func TestDiffWallGateOptIn(t *testing.T) {
	base, cur := mkReport(1000, 2000, 24.5), mkReport(1000, 1000, 24.5)
	if v, _ := diff(base, cur, options{maxRegressPct: 25}); len(v) != 0 {
		t.Fatalf("wall gated by default: %v", v)
	}
	if v, _ := diff(base, cur, options{maxRegressPct: 25, gateWall: true}); len(v) != 1 {
		t.Fatalf("wall not gated with -wall: %v", v)
	}
}

func TestDiffSkipsUnmatchedRows(t *testing.T) {
	base := mkReport(1000, 2000, 24.5)
	cur := mkReport(1000, 2000, 24.5)
	cur.Experiments[0].Rows[0]["Batch"] = float64(64) // new configuration
	v, notes := diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 0 || len(notes) != 1 {
		t.Fatalf("violations %v notes %v", v, notes)
	}
}

func TestDiffSkewSectionAbsentFromBaseline(t *testing.T) {
	// A baseline that predates the skew experiment must not fail the
	// gate, and the skew metrics (HitRate, CachedPages, Speedup, ...)
	// must be treated as metrics, not identity: a skew row whose
	// baseline row exists matches on {Dataset, S, Budget} alone.
	base := mkReport(1000, 2000, 24.5)
	cur := mkReport(1000, 2000, 24.5)
	skewRow := func(qps, hitRate, cached float64) map[string]any {
		return map[string]any{
			"Dataset": "skew-3k", "S": 1.2, "Budget": float64(4 << 20),
			"HitRate": hitRate, "FinePages": 2.0, "CachedPages": cached,
			"BaseFinePages": 9.0, "ModelQPS": qps, "Speedup": qps / 1000,
		}
	}
	cur.Experiments = append(cur.Experiments, struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	}{ID: "skew", Rows: []map[string]any{skewRow(1800, 0.5, 7)}})
	v, notes := diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 0 {
		t.Fatalf("skew section absent from baseline must not violate: %v", v)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skew") {
		t.Fatalf("notes: %v", notes)
	}

	// Once the baseline has the section, metric drift must not break
	// row matching (metrics excluded from the key) and a ModelQPS
	// regression must gate.
	base.Experiments = append(base.Experiments, struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	}{ID: "skew", Rows: []map[string]any{skewRow(1800, 0.6, 8)}})
	if v, _ := diff(base, cur, options{maxRegressPct: 25}); len(v) != 0 {
		t.Fatalf("metric drift broke skew row matching: %v", v)
	}
	cur.Experiments[1].Rows[0]["ModelQPS"] = 900.0
	v, _ = diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 1 || !strings.Contains(v[0], "ModelQPS") {
		t.Fatalf("skew ModelQPS regression not gated: %v", v)
	}
}

// sloReport builds a report with one slo-sweep row at the given p99.
func sloReport(p99 float64) *report {
	var r report
	r.Experiments = []struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	}{
		{ID: "slo", Rows: []map[string]any{{
			"Dataset": "NQ", "Mode": "IVF@np2", "Shards": float64(1),
			"Depth": float64(8), "Load": "0.80",
			"ArrivalQPS": 800.0, "ModelQPS": 1000.0,
			"ModelP50Ms": 1.0, "ModelP95Ms": 2.0, "ModelP99Ms": p99,
			"ModelP999Ms": p99 * 1.5, "MeanBatch": 2.5, "MaxBacklog": float64(6),
		}}},
	}
	return &r
}

// TestDiffSLOGateCatchesP99Regression pins the SLO gate: a p99 rise
// past -max-regress fails, while the report-only quantiles (and p99
// improvements) never do.
func TestDiffSLOGateCatchesP99Regression(t *testing.T) {
	base := sloReport(10)
	v, _ := diff(base, sloReport(14), options{maxRegressPct: 25}) // +40%
	if len(v) != 1 || !strings.Contains(v[0], "ModelP99Ms") {
		t.Fatalf("p99 regression not gated: %v", v)
	}
	// Within tolerance: +20% passes.
	if v, _ := diff(base, sloReport(12), options{maxRegressPct: 25}); len(v) != 0 {
		t.Fatalf("p99 within tolerance violated: %v", v)
	}
	// Getting faster is never a violation.
	if v, _ := diff(base, sloReport(2), options{maxRegressPct: 25}); len(v) != 0 {
		t.Fatalf("p99 improvement violated: %v", v)
	}
	// Report-only quantiles note but never violate.
	cur := sloReport(10)
	cur.Experiments[0].Rows[0]["ModelP999Ms"] = 100.0
	v, notes := diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 0 {
		t.Fatalf("report-only quantile violated: %v", v)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "ModelP999Ms") {
		t.Fatalf("notes: %v", notes)
	}
}

// TestDiffSLOSectionAbsentFromBaseline pins the report-only behaviour
// for new sections: a baseline that predates the slo sweep gets one
// note and no violations, however bad the current quantiles look.
func TestDiffSLOSectionAbsentFromBaseline(t *testing.T) {
	base := mkReport(1000, 2000, 24.5)
	cur := mkReport(1000, 2000, 24.5)
	cur.Experiments = append(cur.Experiments, sloReport(1e9).Experiments...)
	v, notes := diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 0 {
		t.Fatalf("slo section absent from baseline must not violate: %v", v)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "slo") {
		t.Fatalf("notes: %v", notes)
	}
}

func TestDiffNotesMissingExperimentOnce(t *testing.T) {
	base := mkReport(1000, 2000, 24.5)
	cur := mkReport(1000, 2000, 24.5)
	cur.Experiments = append(cur.Experiments, struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	}{ID: "prune", Rows: []map[string]any{
		{"Dataset": "NQ", "Mode": "base", "K": float64(10), "ModelQPS": 900.0},
		{"Dataset": "NQ", "Mode": "prune", "K": float64(10), "ModelQPS": 1800.0},
		{"Dataset": "NQ", "Mode": "prune", "K": float64(100), "ModelQPS": 1500.0},
	}})
	v, notes := diff(base, cur, options{maxRegressPct: 25})
	if len(v) != 0 {
		t.Fatalf("a baseline-less experiment must not violate: %v", v)
	}
	// One note for the whole missing section, not one per row.
	if len(notes) != 1 || !strings.Contains(notes[0], "prune") || !strings.Contains(notes[0], "3 rows") {
		t.Fatalf("notes: %v", notes)
	}
}
