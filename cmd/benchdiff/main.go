// Command benchdiff is the CI benchmark regression gate: it compares a
// freshly generated `reisbench -json` report against the committed
// BENCH_*.json baseline and fails (exit 1) when a deterministic metric
// regressed:
//
//   - ModelQPS (the timing model's throughput — a pure function of the
//     bit-identical device stats, so machine-independent) dropping more
//     than -max-regress percent,
//   - ModelP99Ms (the SLO gate: modeled p99 latency under the pinned
//     arrival schedule — deterministic like ModelQPS) increasing by
//     more than -max-regress percent, or
//   - AllocsPerOp (the zero-alloc query-path contract) increasing by
//     more than -allocs-slack.
//
// The remaining latency quantiles (ModelP50Ms, ModelP95Ms,
// ModelP999Ms) and the frontier latencies are report-only, like the
// other informational metrics.
//
// Wall-clock metrics (WallQPS, NsPerOp) are reported but not enforced
// by default — shared CI runners make them noisy; pass -wall to gate
// on them too (same -max-regress bound).
//
// Usage:
//
//	go run ./cmd/reisbench -exp throughput -json /tmp/bench.json
//	go run ./cmd/benchdiff -baseline BENCH_2026-07-29.json -current /tmp/bench.json
//
// Rows are matched by experiment id plus their identity fields
// (Dataset, Mode, Batch, Depth, Shards, ...); experiments or rows
// missing from the current report are skipped, so a partial CI run
// gates only what it measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// report mirrors reisbench's -json document, with rows kept generic so
// every experiment's row shape works.
type report struct {
	Experiments []struct {
		ID   string           `json:"id"`
		Rows []map[string]any `json:"rows"`
	} `json:"experiments"`
}

// metricFields are enforced or informational; everything else in a row
// is identity.
var metricFields = map[string]bool{
	"WallQPS": true, "ModelQPS": true, "ModelSerialQPS": true,
	"ModelSpeedup": true, "NsPerOp": true, "AllocsPerOp": true,
	"BytesPerOp": true, "AvgBatch": true, "Speedup": true,
	"FinePages": true, "PrunedPages": true, "AbortedWaves": true,
	"HitRate": true, "CachedPages": true, "BaseFinePages": true,
	"Failovers": true, "Retirements": true,
	// GC wear metrics (report-only): write amplification and erase
	// skew from the churn experiment.
	"WriteAmp": true, "MaxBlockErase": true, "CompactedRows": true,
	"BlockErases": true,
	// Latency-distribution metrics from the SLO sweep and the tail
	// columns of qdepth/shards. ModelP99Ms is enforced (increase is a
	// regression); the rest are report-only.
	"ModelP50Ms": true, "ModelP95Ms": true, "ModelP99Ms": true,
	"ModelP999Ms": true, "ArrivalQPS": true, "MeanBatch": true,
	"MaxBacklog": true,
	// Frontier metrics (report-only): recall and modeled latency of
	// the DRAM-side rivals and the flash configurations.
	"Recall": true, "ServeMs": true, "TotalMs": true,
}

// latencyFields are metrics where an *increase* is the regression;
// only ModelP99Ms — the SLO — is enforced.
var latencyFields = []struct {
	name    string
	enforce bool
}{
	{"ModelP99Ms", true},
	{"ModelP50Ms", false},
	{"ModelP95Ms", false},
	{"ModelP999Ms", false},
	{"ServeMs", false},
	{"TotalMs", false},
}

// rowKey builds the match key of a row: the experiment id plus every
// identity field, sorted for stability.
func rowKey(exp string, row map[string]any) string {
	var parts []string
	for k, v := range row {
		if metricFields[k] {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	sort.Strings(parts)
	return exp + "{" + strings.Join(parts, " ") + "}"
}

func num(row map[string]any, field string) (float64, bool) {
	v, ok := row[field].(float64)
	return v, ok
}

func index(r *report) map[string]map[string]any {
	idx := make(map[string]map[string]any)
	for _, e := range r.Experiments {
		for _, row := range e.Rows {
			idx[rowKey(e.ID, row)] = row
		}
	}
	return idx
}

type options struct {
	maxRegressPct float64
	allocsSlack   float64
	gateWall      bool
}

// diff returns the violations (enforced regressions) and notes
// (informational drift) between the two reports.
func diff(baseline, current *report, opt options) (violations, notes []string) {
	base := index(baseline)
	baseExps := make(map[string]bool)
	for _, e := range baseline.Experiments {
		baseExps[e.ID] = true
	}
	for _, e := range current.Experiments {
		if !baseExps[e.ID] {
			// A whole experiment section the baseline predates: one
			// report-only note, not an error (and not one note per row) —
			// the next baseline refresh starts gating it.
			notes = append(notes, fmt.Sprintf(
				"%s: experiment absent from baseline (%d rows not gated; refresh the baseline to gate it)",
				e.ID, len(e.Rows)))
			continue
		}
		for _, row := range e.Rows {
			key := rowKey(e.ID, row)
			b, ok := base[key]
			if !ok {
				notes = append(notes, fmt.Sprintf("%s: no baseline row (new configuration?)", key))
				continue
			}
			check := func(field string, enforce bool) {
				cv, ok1 := num(row, field)
				bv, ok2 := num(b, field)
				if !ok1 || !ok2 || bv <= 0 {
					return
				}
				dropPct := (bv - cv) / bv * 100
				if dropPct > opt.maxRegressPct {
					msg := fmt.Sprintf("%s: %s %.1f -> %.1f (-%.1f%%, limit %.0f%%)",
						key, field, bv, cv, dropPct, opt.maxRegressPct)
					if enforce {
						violations = append(violations, msg)
					} else {
						notes = append(notes, msg)
					}
				}
			}
			// Latency direction: the SLO gate fires when a quantile
			// *rises* past the bound (mirroring the ModelQPS drop gate).
			checkRise := func(field string, enforce bool) {
				cv, ok1 := num(row, field)
				bv, ok2 := num(b, field)
				if !ok1 || !ok2 || bv <= 0 {
					return
				}
				risePct := (cv - bv) / bv * 100
				if risePct > opt.maxRegressPct {
					msg := fmt.Sprintf("%s: %s %.3f -> %.3f (+%.1f%%, limit %.0f%%) — tail-latency regression",
						key, field, bv, cv, risePct, opt.maxRegressPct)
					if enforce {
						violations = append(violations, msg)
					} else {
						notes = append(notes, msg)
					}
				}
			}
			check("ModelQPS", true)
			check("WallQPS", opt.gateWall)
			for _, lf := range latencyFields {
				checkRise(lf.name, lf.enforce)
			}
			if ca, ok1 := num(row, "AllocsPerOp"); ok1 {
				if ba, ok2 := num(b, "AllocsPerOp"); ok2 && ca > ba+opt.allocsSlack {
					violations = append(violations, fmt.Sprintf(
						"%s: AllocsPerOp %.3f -> %.3f (+%.3f, slack %.3f) — zero-alloc path regression",
						key, ba, ca, ca-ba, opt.allocsSlack))
				}
			}
		}
	}
	return violations, notes
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH_*.json baseline")
	current := flag.String("current", "", "freshly generated reisbench -json report")
	maxRegress := flag.Float64("max-regress", 25, "maximum allowed throughput regression, percent")
	allocsSlack := flag.Float64("allocs-slack", 0, "maximum allowed allocs/op increase")
	wall := flag.Bool("wall", false, "also gate wall-clock metrics (noisy on shared runners)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		os.Exit(2)
	}
	b, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	c, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	violations, notes := diff(b, c, options{
		maxRegressPct: *maxRegress,
		allocsSlack:   *allocsSlack,
		gateWall:      *wall,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println("FAIL:", v)
		}
		fmt.Printf("benchdiff: %d regression(s) against %s\n", len(violations), *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions against %s\n", *baseline)
}
