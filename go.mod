module reis

go 1.24
