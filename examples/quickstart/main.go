// Quickstart: deploy a small vector database into a simulated REIS
// device and retrieve documents for one query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

func main() {
	// 1. Build a corpus. In a real pipeline these would be text-chunk
	// embeddings from an encoder model; here the deterministic
	// synthetic generator stands in.
	data := dataset.Generate(dataset.Config{
		Name: "quickstart", N: 2000, Dim: 256, Clusters: 20,
		Queries: 1, DocBytes: 512, Seed: 7,
	})

	// 2. Index offline (the RAG indexing stage): k-means clustering
	// for the Inverted File layout.
	centroids, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 20, Seed: 7})

	// 3. Create a simulated cost-oriented SSD (REIS-SSD1 preset,
	// shrunk capacity) and deploy with the IVF_Deploy API command.
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	engine, err := reis.New(cfg, 256<<20, reis.AllOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := engine.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 512,
		Centroids: centroids, Assign: assign,
	}); err != nil {
		log.Fatal(err)
	}

	// 4. Search in storage: the query embedding goes to the device,
	// relevant document chunks come back.
	results, stats, err := engine.IVFSearch(1, data.Queries[0], 3, reis.SearchOptions{NProbe: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top documents:")
	for i, r := range results {
		fmt.Printf("  %d. id=%d dist=%.0f %q...\n", i+1, r.ID, r.Dist, r.Doc[:40])
	}

	// 5. Inspect what the device did and what it would cost at this
	// workload's size.
	db, _ := engine.DB(1)
	bd := engine.Latency(db, stats, reis.UnitScale())
	fmt.Printf("\ndevice events: %d pages sensed, %d embeddings distance-checked, %d survived filtering\n",
		stats.CoarsePages+stats.FinePages, stats.EntriesScanned, stats.Survivors)
	fmt.Printf("modeled latency: %v, energy: %.1f uJ\n", bd.Total, bd.EnergyJ*1e6)
}
