// Tuning: sweep the recall/latency trade-off of the in-storage IVF
// search — the calibration loop behind the paper's "sweeping the
// accuracy of IVF from 0.98 down to 0.9 Recall@10".
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

func main() {
	// QueryNoise 0.6 puts queries between topics so the sweep actually
	// trades recall for probes (easy queries saturate at nprobe=1).
	data := dataset.Generate(dataset.Config{
		Name: "tuning", N: 4000, Dim: 256, Clusters: 32,
		Queries: 24, DocBytes: 256, QueryNoise: 0.6, Seed: 33,
	})
	// Index with more cells than generator topics (as a sqrt(N)-sized
	// nlist would) so true neighbors straddle cell boundaries and the
	// recall/probe trade-off is visible.
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 96, Seed: 33})
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	engine, err := reis.New(cfg, 512<<20, reis.AllOptions())
	if err != nil {
		log.Fatal(err)
	}
	db, err := engine.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 256,
		Centroids: cents, Assign: assign,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nprobe  recall@10  scanned  survivors  batch-makespan")
	for _, nprobe := range []int{1, 2, 4, 8, 16, 32, 96} {
		// One batched IVF_Search host command per operating point — the
		// same admission path the async queue pair and the serving tier
		// use, with results bit-identical to sequential calls.
		resp, err := engine.Submit(reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: 1, Queries: data.Queries,
			K: 10, NProbe: nprobe, Opt: reis.SearchOptions{SkipDocs: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		got := make([][]int, len(resp.Results))
		for qi, res := range resp.Results {
			ids := make([]int, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			got[qi] = ids
		}
		recall := dataset.Recall(data.GroundTruth, got, 10)
		n := len(data.Queries)
		bb := engine.BatchLatency(db, resp.QueryStats, reis.UnitScale())
		fmt.Printf("%5d %9.3f %8d %10d %14v\n",
			nprobe, recall, resp.Stats.EntriesScanned/n, resp.Stats.Survivors/n, bb.Makespan)
	}

	// The automatic calibration the experiments use, and the resulting
	// TargetRecall operand: once calibrated, a host command can carry
	// the accuracy target R instead of an explicit nprobe and the
	// device resolves it.
	for _, target := range []float64{0.90, 0.95} {
		nprobe, err := engine.CalibrateNProbe(1, data.Queries, data.GroundTruth, 10, target)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := engine.Submit(reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: 1, Queries: data.Queries,
			K: 10, TargetRecall: target, Opt: reis.SearchOptions{SkipDocs: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("calibrated nprobe for Recall@10 >= %.2f: %d (%d results via TargetRecall operand)\n",
			target, nprobe, len(resp.Results))
	}
}
