// Multidb: several domain-specific databases coexisting on one device
// (the scenario of Sec 3.2 — medical/legal/finance corpora that defeat
// cross-domain batching), plus the metadata-filtering extension of
// Sec 7.1 used for freshness-windowed retrieval.
//
//	go run ./examples/multidb
package main

import (
	"fmt"
	"log"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

func main() {
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 32
	cfg.Geo.PagesPerBlock = 16
	engine, err := reis.New(cfg, 1<<30, reis.AllOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Deploy three isolated domain databases. The R-DB coarse-grained
	// records keep them addressable without any page-level FTL.
	domains := []string{"medical", "legal", "finance"}
	corpora := make(map[string]*dataset.Dataset)
	for i, name := range domains {
		data := dataset.Generate(dataset.Config{
			Name: name, N: 1500, Dim: 256, Clusters: 12,
			Queries: 2, DocBytes: 512, Seed: uint64(100 + i),
		})
		corpora[name] = data
		cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 12, Seed: uint64(i)})

		// Tag each entry with a pseudo "timestamp bucket" (hour of
		// ingestion mod 4) for metadata filtering.
		tags := make([]uint8, data.Len())
		for j := range tags {
			tags[j] = uint8(j % 4)
		}
		if _, err := engine.IVFDeploy(reis.DeployConfig{
			ID: i + 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 512,
			Centroids: cents, Assign: assign, MetaTags: tags,
		}); err != nil {
			log.Fatalf("deploy %s: %v", name, err)
		}
		fmt.Printf("deployed %-8s as database %d (%d entries)\n", name, i+1, data.Len())
	}

	// Route a query to each domain database through the host-command
	// interface — DBID is the routing operand, exactly as a driver
	// multiplexing tenants over one device would submit it.
	for i, name := range domains {
		data := corpora[name]
		resp, err := engine.Submit(reis.HostCommand{
			Opcode: reis.OpcodeIVFSearch, DBID: i + 1,
			Queries: data.Queries[:1], K: 2, NProbe: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		results := resp.Results[0]
		fmt.Printf("\n%s query -> %d hits:\n", name, len(results))
		for _, r := range results {
			fmt.Printf("  id=%-5d %q...\n", r.ID, r.Doc[:32])
		}
	}

	// Metadata filtering: restrict the medical search to timestamp
	// bucket 2, as a real-time pipeline would restrict to a freshness
	// window (Sec 7.1). The filter rides in the command's search
	// options.
	bucket := uint8(2)
	resp, err := engine.Submit(reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1,
		Queries: corpora["medical"].Queries[1:2], K: 3, NProbe: 8,
		Opt: reis.SearchOptions{MetaTag: &bucket},
	})
	if err != nil {
		log.Fatal(err)
	}
	results := resp.Results[0]
	fmt.Printf("\nmedical query restricted to timestamp bucket %d -> %d hits:\n", bucket, len(results))
	for _, r := range results {
		fmt.Printf("  id=%-5d (id mod 4 = %d) %q...\n", r.ID, r.ID%4, r.Doc[:32])
	}
}
