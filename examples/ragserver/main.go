// Ragserver: an HTTP retrieval service backed by the in-storage
// engine — the serving tier a RAG pipeline would put in front of REIS,
// now built on the internal/serve replica group and gateway.
//
// The corpus is deployed onto -replicas identical hosts (each a single
// simulated device, or a -shards scatter-gather stripe-set). Every
// request is routed to one replica by power-of-two-choices over queue
// occupancy, fails over when a replica's queue saturates, and mutation
// commands would broadcast to all replicas — so responses are
// bit-identical no matter how many replicas serve them. The gateway
// layers a middleware chain on top: request IDs, optional bearer auth,
// per-tenant rate limiting, per-route metrics, NDJSON streaming for
// batches, 503 + Retry-After backpressure, and graceful drain on
// SIGINT/SIGTERM (stop admitting, finish in-flight, close the group).
//
//	go run ./examples/ragserver -addr :8080 -replicas 3 -shards 2
//	curl 'localhost:8080/search?q=17&k=3'            (q = sample query index)
//	curl -N 'localhost:8080/search/stream?q=1,2,3'   (NDJSON, per-query flush)
//	curl 'localhost:8080/stats'
//	curl 'localhost:8080/healthz'
//
// Because the device is simulated, queries are addressed by index into
// a held-out sample set rather than by free text (there is no encoder
// model in this repository).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/serve"
	"reis/internal/ssd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 8000, "corpus size")
	qdepth := flag.Int("qdepth", 64, "per-replica queue depth (concurrent request budget)")
	replicas := flag.Int("replicas", 1, "replica hosts (each holds the full corpus)")
	shards := flag.Int("shards", 1, "simulated devices per replica (scatter-gather when > 1)")
	auth := flag.String("auth", "", "bearer token required on search routes (empty disables auth)")
	rate := flag.Float64("rate", 0, "per-tenant request rate limit in req/s (0 disables)")
	burst := flag.Int("burst", 0, "rate-limit burst (default: ceil(rate))")
	flag.Parse()

	data := dataset.Generate(dataset.Config{
		Name: "ragserver", N: *n, Dim: 384, Clusters: 48,
		Queries: 256, DocBytes: 768, Seed: 21,
	})
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 48, Seed: 21})
	cfg := ssd.SSD2()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	hint := int64(*n)*384*16 + 128<<20

	hosts := make([]serve.Host, *replicas)
	for i := range hosts {
		var err error
		if *shards > 1 {
			hosts[i], err = reis.NewSharded(cfg, *shards, hint, reis.AllOptions())
		} else {
			hosts[i], err = reis.New(cfg, hint, reis.AllOptions())
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	group, err := serve.NewGroup(hosts, serve.Config{QueueDepth: *qdepth})
	if err != nil {
		log.Fatal(err)
	}
	// Deploy through the group: the command broadcasts to every
	// replica under the mutation barrier, so all members hold
	// bit-identical state from the start.
	if _, err := group.Submit(reis.HostCommand{
		Opcode: reis.OpcodeIVFDeploy,
		Deploy: &reis.DeployConfig{
			ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 1024,
			Centroids: cents, Assign: assign,
		},
	}); err != nil {
		log.Fatal(err)
	}

	gw := serve.NewGateway(group, serve.GatewayConfig{
		Queries: data.Queries, DefaultK: 5, NProbe: 6,
		AuthToken: *auth, RateLimit: *rate, RateBurst: *burst,
		RetryAfter: time.Second,
		Latency:    latencyModel(hosts[0]),
	})
	srv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	log.Printf("ragserver: %d docs on %d replica(s) x %d device(s) (%s); queue depth %d; listening on %s",
		*n, *replicas, *shards, cfg.Name, *qdepth, *addr)

	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	// Graceful drain: stop accepting, let the gateway finish in-flight
	// requests, then close the replica group.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("ragserver: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if err := gw.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Print("ragserver: drained, bye")
}

// latencyModel renders a response's modeled device latency using one
// replica's timing model (replicas are identical, so any member's
// model applies).
func latencyModel(h serve.Host) func(reis.HostResponse) string {
	switch e := h.(type) {
	case *reis.Engine:
		return func(resp reis.HostResponse) string {
			db, err := e.DB(1)
			if err != nil {
				return err.Error()
			}
			return e.Latency(db, resp.QueryStats[0], reis.UnitScale()).Total.String()
		}
	case *reis.ShardedEngine:
		return func(resp reis.HostResponse) string {
			bd, err := e.Latency(1, resp.QueryStats[0], resp.ShardStats(0), reis.UnitScale())
			if err != nil {
				return err.Error()
			}
			return bd.Total.String()
		}
	}
	return nil
}
