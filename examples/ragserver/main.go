// Ragserver: an HTTP retrieval service backed by the in-storage
// engine — the shape of the serving tier a RAG pipeline would put in
// front of REIS.
//
//	go run ./examples/ragserver -addr :8080
//	curl 'localhost:8080/search?q=17&k=3'      (q = sample query index)
//	curl 'localhost:8080/stats'
//
// Because the device is simulated, queries are addressed by index into
// a held-out sample set rather than by free text (there is no encoder
// model in this repository).
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strconv"
	"sync"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

type server struct {
	mu     sync.Mutex // the simulated device is single-queue
	engine *reis.Engine
	db     *reis.Database
	data   *dataset.Dataset

	queries int64
	stats   reis.QueryStats
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 8000, "corpus size")
	flag.Parse()

	data := dataset.Generate(dataset.Config{
		Name: "ragserver", N: *n, Dim: 384, Clusters: 48,
		Queries: 256, DocBytes: 768, Seed: 21,
	})
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 48, Seed: 21})
	cfg := ssd.SSD2()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	engine, err := reis.New(cfg, int64(*n)*384*16+128<<20, reis.AllOptions())
	if err != nil {
		log.Fatal(err)
	}
	db, err := engine.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 1024,
		Centroids: cents, Assign: assign,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := &server{engine: engine, db: db, data: data}

	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/stats", s.handleStats)
	log.Printf("ragserver: %d docs deployed on %s; listening on %s", *n, cfg.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qIdx, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil || qIdx < 0 || qIdx >= len(s.data.Queries) {
		http.Error(w, "q must be a sample-query index", http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k <= 0 {
		k = 5
	}
	s.mu.Lock()
	results, st, err := s.engine.IVFSearch(1, s.data.Queries[qIdx], k, reis.SearchOptions{NProbe: 6})
	if err == nil {
		s.queries++
		s.stats.Add(st)
	}
	bd := s.engine.Latency(s.db, st, reis.UnitScale())
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	type hit struct {
		ID   int     `json:"id"`
		Dist float32 `json:"dist"`
		Doc  string  `json:"doc"`
	}
	out := struct {
		Hits      []hit  `json:"hits"`
		DeviceLat string `json:"device_latency"`
	}{DeviceLat: bd.Total.String()}
	for _, res := range results {
		out.Hits = append(out.Hits, hit{ID: res.ID, Dist: res.Dist, Doc: string(res.Doc[:64])})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(struct {
		Queries int64           `json:"queries"`
		Device  reis.QueryStats `json:"device_totals"`
	}{s.queries, s.stats}); err != nil {
		log.Printf("encode: %v", err)
	}
}
