// Ragserver: an HTTP retrieval service backed by the in-storage
// engine — the shape of the serving tier a RAG pipeline would put in
// front of REIS.
//
// Concurrent requests are served through one asynchronous queue pair:
// each HTTP handler submits a single-query IVF_Search command under
// the request's context and waits for its completion. The queue's
// dispatcher coalesces simultaneous requests into batched executions
// (per-request results are bit-identical either way), a saturated
// queue surfaces as 503 backpressure, and a client that disconnects
// cancels its command.
//
//	go run ./examples/ragserver -addr :8080 -shards 2
//	curl 'localhost:8080/search?q=17&k=3'      (q = sample query index)
//	curl 'localhost:8080/stats'
//
// With -shards N the corpus is partitioned across N simulated devices
// and every request is served by scatter-gather; responses are
// bit-identical to the single-device server.
//
// Because the device is simulated, queries are addressed by index into
// a held-out sample set rather than by free text (there is no encoder
// model in this repository).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"strconv"
	"sync"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/reis"
	"reis/internal/ssd"
)

type server struct {
	queue *reis.Queue
	data  *dataset.Dataset
	// latency models one request's device latency from its completion
	// (single-device or sharded, depending on -shards).
	latency func(resp reis.HostResponse) string

	mu      sync.Mutex // guards the served-traffic counters only
	queries int64
	stats   reis.QueryStats
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 8000, "corpus size")
	qdepth := flag.Int("qdepth", 64, "submission queue depth (concurrent request budget)")
	shards := flag.Int("shards", 1, "simulated devices (scatter-gather when > 1)")
	flag.Parse()

	data := dataset.Generate(dataset.Config{
		Name: "ragserver", N: *n, Dim: 384, Clusters: 48,
		Queries: 256, DocBytes: 768, Seed: 21,
	})
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 48, Seed: 21})
	cfg := ssd.SSD2()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	hint := int64(*n)*384*16 + 128<<20
	deploy := reis.DeployConfig{
		ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 1024,
		Centroids: cents, Assign: assign,
	}
	s := &server{data: data}
	if *shards > 1 {
		sh, err := reis.NewSharded(cfg, *shards, hint, reis.AllOptions())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sh.IVFDeploy(deploy); err != nil {
			log.Fatal(err)
		}
		if s.queue, err = sh.NewQueue(reis.QueueConfig{Depth: *qdepth}); err != nil {
			log.Fatal(err)
		}
		s.latency = func(resp reis.HostResponse) string {
			bd, err := sh.Latency(1, resp.QueryStats[0], resp.ShardStats(0), reis.UnitScale())
			if err != nil {
				return err.Error()
			}
			return bd.Total.String()
		}
	} else {
		engine, err := reis.New(cfg, hint, reis.AllOptions())
		if err != nil {
			log.Fatal(err)
		}
		db, err := engine.IVFDeploy(deploy)
		if err != nil {
			log.Fatal(err)
		}
		if s.queue, err = engine.NewQueue(reis.QueueConfig{Depth: *qdepth}); err != nil {
			log.Fatal(err)
		}
		s.latency = func(resp reis.HostResponse) string {
			return engine.Latency(db, resp.QueryStats[0], reis.UnitScale()).Total.String()
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/stats", s.handleStats)
	log.Printf("ragserver: %d docs deployed on %dx %s; queue depth %d; listening on %s",
		*n, *shards, cfg.Name, *qdepth, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qIdx, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil || qIdx < 0 || qIdx >= len(s.data.Queries) {
		http.Error(w, "q must be a sample-query index", http.StatusBadRequest)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k <= 0 {
		k = 5
	}
	// One command per request, bounded by the request's own context:
	// a dropped connection cancels the search, a full queue is
	// backpressure the client can retry.
	id, err := s.queue.SubmitAsync(r.Context(), reis.HostCommand{
		Opcode: reis.OpcodeIVFSearch, DBID: 1,
		Queries: [][]float32{s.data.Queries[qIdx]}, K: k,
		Opt: reis.SearchOptions{NProbe: 6},
	})
	if errors.Is(err, reis.ErrQueueFull) {
		http.Error(w, "retrieval queue saturated, retry", http.StatusServiceUnavailable)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.queue.Wait(r.Context(), id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st := resp.QueryStats[0]
	deviceLat := s.latency(resp)
	s.mu.Lock()
	s.queries++
	s.stats.Add(st)
	s.mu.Unlock()

	type hit struct {
		ID   int     `json:"id"`
		Dist float32 `json:"dist"`
		Doc  string  `json:"doc"`
	}
	out := struct {
		Hits      []hit  `json:"hits"`
		DeviceLat string `json:"device_latency"`
	}{DeviceLat: deviceLat}
	for _, res := range resp.Results[0] {
		out.Hits = append(out.Hits, hit{ID: res.ID, Dist: res.Dist, Doc: string(res.Doc[:64])})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		log.Printf("encode: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	queries, device := s.queries, s.stats
	s.mu.Unlock()
	qst := s.queue.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(struct {
		Queries int64           `json:"queries"`
		Device  reis.QueryStats `json:"device_totals"`
		Queue   reis.QueueStats `json:"queue"`
	}{queries, device, qst}); err != nil {
		log.Printf("encode: %v", err)
	}
}
