// Package reis is the root of the REIS reproduction: a retrieval
// system for Retrieval-Augmented Generation with In-Storage Processing
// (ISCA 2025), rebuilt as a Go library with a functional NAND-flash /
// SSD simulation substrate.
//
// The engine (internal/reis) exposes the Table 1 vendor command set
// through an NVMe-style host interface: Engine.NewQueue creates an
// asynchronous submission/completion queue pair (SubmitAsync, Reap,
// Wait, completion channels/callbacks, per-command context
// cancellation, depth-based admission control and per-database QoS
// weights), and the synchronous Engine.Submit is a thin submit+wait
// wrapper over the engine's built-in pair. Batched admission and
// queue-side coalescing keep the flash planes busy across queries
// while results stay bit-identical to sequential execution. See
// DESIGN.md ("Host queue model") for the architecture.
//
// reis.NewSharded scales the engine out across N simulated devices: a
// scatter-gather router page-stripes one globally planned layout over
// the member devices, fans searches out through per-shard queue pairs
// (the OpcodeScan scatter command), merges the per-shard TTL streams
// in global position order, and runs the controller tail over the
// merged stream — results and aggregated device stats are
// bit-identical to a single device over the same data (DESIGN.md,
// "Sharded topology").
//
// Deployed databases are mutable online: OpcodeAppend writes new
// items out-of-place into wear-leveled free rows (least-worn-first
// placement over reserved overprovision blocks and rows recycled by
// GC; ssd.ErrRegionFull on true exhaustion), OpcodeDelete tombstones
// entries in a controller-DRAM bitmap consulted by the controller
// tail, and OpcodeCompact runs the garbage collector as a background
// queue flight — per-row copy-forward steps interleaved with
// foreground searches under a QoS stride weight, every step boundary
// a consistent state, with write amplification and erase-skew
// reported in HostResponse.Wear. Compaction provably preserves search
// results even mid-flight, every committed mutation is recorded in an
// append-only journal whose prefixes rebuild the exact pre-crash
// state on a fresh deploy (Engine.ReplayJournal), and every mutation
// is bit-identical between a sharded topology and its single-device
// reference (DESIGN.md, "Mutability and garbage collection" and
// "Concurrent GC, wear leveling, and recovery").
//
// Above the engines, internal/serve is the replicated serving tier:
// serve.NewGroup replicates the corpus across N hosts (single-device
// or sharded), routes each search to one member by
// power-of-two-choices over queue occupancy, fails over on
// reis.ErrQueueFull with streak-based retirement and occupancy-based
// readmission, and broadcasts every mutation to all members under a
// barrier with cross-replica response verification — responses stay
// bit-identical no matter how many replicas serve them.
// serve.NewGateway wraps a group in a production HTTP layer:
// middleware chain (request IDs, bearer auth, per-tenant rate
// limiting, per-route metrics), NDJSON streaming for batches,
// 503 + Retry-After backpressure, and graceful drain (DESIGN.md,
// "Replicated serving and gateway").
//
// The timing model extends past averages into distributions:
// Engine.RunLoad / ShardedEngine.RunLoad replay a deterministic
// Poisson arrival schedule through a queue pair in virtual time and
// accumulate per-command modeled latency into a streaming quantile
// sketch (reis.LatencySketch, DDSketch-style with a guaranteed
// relative-error bound), so p50/p95/p99/p999 are bit-identical run to
// run and gate CI: cmd/benchdiff fails when modeled p99 under the
// pinned arrival rate regresses against the committed BENCH_*.json
// baseline (DESIGN.md, "Latency distributions and SLOs"). The
// recall-vs-latency frontier (reisbench -exp frontier) runs live
// HNSW/LSH/PQ-IVF indexes from internal/ann over the engine's own
// corpus and prices them with the DRAM cost models of internal/rivals
// against the flash engine's pruned and cached configurations.
//
// Runnable entry points are cmd/reisbench (regenerates every table and
// figure of the paper, plus the throughput, queue-depth, shard
// scale-out, replicated-serving, SLO and frontier sweeps), cmd/reisctl
// (deploy + async search against a simulated device, a -shards
// topology, or a -replicas group), and the examples/ directory
// (examples/ragserver is the gateway over a replica group). The
// root-level benchmarks in bench_test.go drive the same experiment
// runners through `go test -bench`. README.md has the quickstart and
// the current results table.
package reis
