// Package reis is the root of the REIS reproduction: a retrieval
// system for Retrieval-Augmented Generation with In-Storage Processing
// (ISCA 2025), rebuilt as a Go library with a functional NAND-flash /
// SSD simulation substrate.
//
// The implementation lives under internal/ (see DESIGN.md for the
// module map); runnable entry points are cmd/reisbench (regenerates
// every table and figure of the paper), cmd/reisctl (interactive
// deploy/search against a simulated device), and the examples/
// directory. The root-level benchmarks in bench_test.go drive the same
// experiment runners through `go test -bench`.
package reis
