package reis

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark executes the corresponding experiment
// runner and reports the headline quantity the paper quotes as a
// custom benchmark metric, so `go test -bench=. -benchmem` regenerates
// the full evaluation.
//
// BENCH_SCALE semantics: workloads run at catalog size divided by the
// scale constant below; device latencies are costed at the paper's
// full dataset sizes (see internal/experiments).

import (
	"testing"

	"reis/internal/experiments"
)

// benchScale divides the catalog workload sizes. 16 keeps the full
// suite within a few minutes while leaving thousands of vectors per
// dataset.
const benchScale = 16

func BenchmarkFig2RAGBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRAGBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "CPU flat" && r.Dataset == "wiki_en" {
				b.ReportMetric(100*r.Stages.Fractions().DatasetLoad, "wiki_en_load_%")
			}
		}
	}
}

func BenchmarkFig3RAGBreakdownBQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRAGBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "CPU+BQ" && r.Dataset == "wiki_en" {
				b.ReportMetric(100*r.Stages.Fractions().DatasetLoad, "wiki_en_BQ_load_%")
			}
		}
	}
}

func BenchmarkFig5AlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig5(benchScale * 2)
		if err != nil {
			b.Fatal(err)
		}
		var bestBQIVF float64
		for _, p := range pts {
			if p.Algorithm == "BQ IVF" && p.NormQPS > bestBQIVF {
				bestBQIVF = p.NormQPS
			}
		}
		b.ReportMetric(bestBQIVF, "BQ-IVF_peak_normQPS")
	}
}

func BenchmarkFig7Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		avg, maxS, _, _ := experiments.SummarizeFig7(rows)
		b.ReportMetric(avg, "avg_speedup_x")
		b.ReportMetric(maxS, "max_speedup_x")
	}
}

func BenchmarkFig8EnergyEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avgW, maxW := experiments.SummarizeFig7(rows)
		b.ReportMetric(avgW, "avg_QPSperW_x")
		b.ReportMetric(maxW, "max_QPSperW_x")
	}
}

func BenchmarkTable4EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRAGBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var reisTotal, cpuTotal float64
		for _, r := range rows {
			if r.Dataset == "wiki_en" {
				switch r.System {
				case "REIS-SSD1":
					reisTotal = r.Stages.Total()
				case "CPU+BQ":
					cpuTotal = r.Stages.Total()
				}
			}
		}
		if reisTotal > 0 {
			b.ReportMetric(cpuTotal/reisTotal, "wiki_en_e2e_speedup_x")
		}
	}
}

func BenchmarkFig9Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig9(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		var dfGain float64
		var n float64
		for _, r := range rows {
			if r.NoOpt > 0 {
				dfGain += r.DF / r.NoOpt
				n++
			}
		}
		b.ReportMetric(dfGain/n, "avg_DF_gain_x")
	}
}

func BenchmarkREISASIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunASIC(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Slowdown
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_ASIC_slowdown_x")
	}
}

func BenchmarkFig10VersusICE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig10(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.SpeedupICE
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_speedup_vs_ICE_x")
	}
}

func BenchmarkFig11VersusNDSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.SpeedupND
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_speedup_vs_ND_x")
	}
}
