package reis

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark executes the corresponding experiment
// runner and reports the headline quantity the paper quotes as a
// custom benchmark metric, so `go test -bench=. -benchmem` regenerates
// the full evaluation.
//
// BENCH_SCALE semantics: workloads run at catalog size divided by the
// scale constant below; device latencies are costed at the paper's
// full dataset sizes (see internal/experiments).

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"reis/internal/ann"
	"reis/internal/dataset"
	"reis/internal/experiments"
	"reis/internal/reis"
	"reis/internal/ssd"
)

// benchScale divides the catalog workload sizes. 16 keeps the full
// suite within a few minutes while leaving thousands of vectors per
// dataset.
const benchScale = 16

// throughputSetup deploys the quickstart-scale workload (2000 x
// 256-dim, full REIS-SSD1 plane parallelism) used by the batched-vs-
// sequential throughput benchmarks.
func throughputSetup(b *testing.B) (*reis.Engine, *reis.Database, [][]float32) {
	b.Helper()
	data := dataset.Generate(dataset.Config{
		Name: "throughput", N: 2000, Dim: 256, Clusters: 20,
		Queries: 64, DocBytes: 512, Seed: 7,
	})
	cents, assign := ann.KMeans(data.Vectors, ann.KMeansConfig{K: 20, Seed: 7})
	cfg := ssd.SSD1()
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	engine, err := reis.New(cfg, 256<<20, reis.AllOptions())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := engine.IVFDeploy(reis.DeployConfig{
		ID: 1, Vectors: data.Vectors, Docs: data.Docs, DocSlotBytes: 512,
		Centroids: cents, Assign: assign,
	}); err != nil {
		b.Fatal(err)
	}
	db, err := engine.DB(1)
	if err != nil {
		b.Fatal(err)
	}
	return engine, db, data.Queries
}

// BenchmarkSearchThroughput sweeps the admission batch size and
// reports wall-clock queries/sec of the functional simulation plus the
// timing model's batch QPS. Batch size 1 is the sequential baseline
// (one Search call per query); larger batches go through SearchBatch.
func BenchmarkSearchThroughput(b *testing.B) {
	engine, db, queries := throughputSetup(b)
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			// Every sub-benchmark rotates through the same query list,
			// so qps across batch sizes compares identical workloads.
			qs := make([][]float32, batch)
			var sts []reis.QueryStats
			b.ResetTimer()
			served := 0
			for i := 0; i < b.N; i++ {
				for j := range qs {
					qs[j] = queries[(i*batch+j)%len(queries)]
				}
				if batch == 1 {
					_, st, err := engine.Search(1, qs[0], 10, reis.SearchOptions{})
					if err != nil {
						b.Fatal(err)
					}
					sts = []reis.QueryStats{st}
					served++
				} else {
					var err error
					_, sts, err = engine.SearchBatch(1, qs, 10, reis.SearchOptions{})
					if err != nil {
						b.Fatal(err)
					}
					served += batch
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "qps")
			bd := engine.BatchLatency(db, sts, reis.UnitScale())
			b.ReportMetric(bd.QPS, "model_qps")
		})
	}
}

// BenchmarkQueueDepth serves the same workload as
// BenchmarkSearchThroughput, but as single-query host commands through
// one asynchronous queue pair, sweeping the submission-queue depth. At
// depth 1 the queue degenerates to synchronous submission; at depth 8+
// the dispatcher coalesces pending commands into batched executions,
// so qps should approach the batch=8/64 rows of the batched path.
func BenchmarkQueueDepth(b *testing.B) {
	engine, _, queries := throughputSetup(b)
	defer engine.Close()
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			ch := make(chan reis.Completion, depth)
			queue, err := engine.NewQueue(reis.QueueConfig{Depth: depth, Completions: ch})
			if err != nil {
				b.Fatal(err)
			}
			defer queue.Close()
			b.ResetTimer()
			served := 0
			for i := 0; i < b.N; i++ {
				cmd := reis.HostCommand{
					Opcode: reis.OpcodeSearch, DBID: 1,
					Queries: [][]float32{queries[i%len(queries)]}, K: 10,
				}
				for {
					_, err := queue.SubmitAsync(context.Background(), cmd)
					if errors.Is(err, reis.ErrQueueFull) {
						if c := <-ch; c.Err != nil {
							b.Fatal(c.Err)
						}
						served++
						continue
					}
					if err != nil {
						b.Fatal(err)
					}
					break
				}
			}
			for served < b.N {
				if c := <-ch; c.Err != nil {
					b.Fatal(c.Err)
				}
				served++
			}
			b.StopTimer()
			b.ReportMetric(float64(served)/b.Elapsed().Seconds(), "qps")
			st := queue.Stats()
			if st.Dispatches > 0 {
				b.ReportMetric(float64(st.Submitted)/float64(st.Dispatches), "avg_batch")
			}
		})
	}
}

func BenchmarkFig2RAGBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRAGBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "CPU flat" && r.Dataset == "wiki_en" {
				b.ReportMetric(100*r.Stages.Fractions().DatasetLoad, "wiki_en_load_%")
			}
		}
	}
}

func BenchmarkFig3RAGBreakdownBQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRAGBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == "CPU+BQ" && r.Dataset == "wiki_en" {
				b.ReportMetric(100*r.Stages.Fractions().DatasetLoad, "wiki_en_BQ_load_%")
			}
		}
	}
}

func BenchmarkFig5AlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig5(benchScale * 2)
		if err != nil {
			b.Fatal(err)
		}
		var bestBQIVF float64
		for _, p := range pts {
			if p.Algorithm == "BQ IVF" && p.NormQPS > bestBQIVF {
				bestBQIVF = p.NormQPS
			}
		}
		b.ReportMetric(bestBQIVF, "BQ-IVF_peak_normQPS")
	}
}

func BenchmarkFig7Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		avg, maxS, _, _ := experiments.SummarizeFig7(rows)
		b.ReportMetric(avg, "avg_speedup_x")
		b.ReportMetric(maxS, "max_speedup_x")
	}
}

func BenchmarkFig8EnergyEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _, avgW, maxW := experiments.SummarizeFig7(rows)
		b.ReportMetric(avgW, "avg_QPSperW_x")
		b.ReportMetric(maxW, "max_QPSperW_x")
	}
}

func BenchmarkTable4EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRAGBreakdown(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var reisTotal, cpuTotal float64
		for _, r := range rows {
			if r.Dataset == "wiki_en" {
				switch r.System {
				case "REIS-SSD1":
					reisTotal = r.Stages.Total()
				case "CPU+BQ":
					cpuTotal = r.Stages.Total()
				}
			}
		}
		if reisTotal > 0 {
			b.ReportMetric(cpuTotal/reisTotal, "wiki_en_e2e_speedup_x")
		}
	}
}

func BenchmarkFig9Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig9(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		var dfGain float64
		var n float64
		for _, r := range rows {
			if r.NoOpt > 0 {
				dfGain += r.DF / r.NoOpt
				n++
			}
		}
		b.ReportMetric(dfGain/n, "avg_DF_gain_x")
	}
}

func BenchmarkREISASIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunASIC(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Slowdown
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_ASIC_slowdown_x")
	}
}

func BenchmarkFig10VersusICE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig10(benchScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.SpeedupICE
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_speedup_vs_ICE_x")
	}
}

func BenchmarkFig11VersusNDSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig11(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.SpeedupND
		}
		b.ReportMetric(sum/float64(len(rows)), "avg_speedup_vs_ND_x")
	}
}
